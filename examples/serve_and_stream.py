"""The concurrent analytics service: coalesced reads under a delta stream.

Starts an :class:`AnalyticsService` in-process (no HTTP needed — the
server endpoints wrap exactly this API), fires concurrent workload
requests from several client threads while a writer streams delta
batches into the fact relation, and prints the ``/stats`` report.

Three things to watch in the output:

* concurrent requests *coalesce*: their ``batch_size`` is > 1 and near-
  identical workloads (covar and linreg share almost their entire view
  DAG) execute as one fused run;
* every response names the committed *epoch* it answered — reads that
  overlap a delta commit still see exactly one database version;
* the view cache absorbs the churn: delta commits invalidate only the
  entries whose footprint contains the fact relation.

Run:  python examples/serve_and_stream.py
"""

import json
import threading
import time

import numpy as np

from repro import AnalyticsService, DeltaBatch
from repro.datasets import favorita
from repro.ml import CovarBatch

N_CLIENTS = 4
REQUESTS_PER_CLIENT = 5
N_DELTAS = 8


def main() -> None:
    dataset = favorita(scale=0.3)
    label = dataset.label
    if dataset.database.attribute_kind(label) != "continuous":
        label = dataset.continuous_features[0]
    continuous = [f for f in dataset.continuous_features if f != label]

    service = AnalyticsService(coalesce_ms=20, max_batch=8, cache_mb=64)
    service.register_dataset(
        "favorita", dataset.database, dataset.join_tree
    )
    # covar and linreg are the paper's own redundancy story: the ridge
    # regression trains on the covar matrix, so the two view DAGs are
    # near-identical and fuse almost completely
    service.register_workload(
        "favorita",
        "covar",
        CovarBatch(continuous, dataset.categorical_features, label).batch,
    )
    service.register_workload(
        "favorita",
        "linreg",
        CovarBatch(continuous, dataset.categorical_features, label).batch,
    )
    service.prepare("favorita")
    root = max(
        service.snapshot("favorita").database,
        key=lambda r: r.n_rows,
    ).name
    print(
        f"serving favorita: workloads covar+linreg, fact relation "
        f"{root!r}, coalescing window 20ms\n"
    )

    responses = []
    responses_lock = threading.Lock()

    def client(slot: int) -> None:
        rng = np.random.default_rng(slot)
        for _ in range(REQUESTS_PER_CLIENT):
            names = ["covar"] if rng.random() < 0.5 else ["covar", "linreg"]
            response = service.query("favorita", names, timeout=120)
            with responses_lock:
                responses.append(response)
            time.sleep(float(rng.uniform(0.0, 0.05)))

    def writer() -> None:
        rng = np.random.default_rng(99)
        for step in range(N_DELTAS):
            fact = service.snapshot("favorita").database.relation(root)
            n_delta = max(1, fact.n_rows // 200)
            sample = rng.integers(0, fact.n_rows, n_delta)
            inserts = {
                a: fact.column(a)[sample] for a in fact.schema.names
            }
            committed = service.apply_delta(
                "favorita", DeltaBatch(root, inserts=inserts)
            )
            print(
                f"  delta {step}: +{n_delta} rows -> epoch "
                f"{committed.epoch}"
            )
            time.sleep(0.04)

    threads = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(N_CLIENTS)
    ] + [threading.Thread(target=writer)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    print(
        f"\n{len(responses)} requests served in {elapsed:.2f}s while "
        f"{N_DELTAS} deltas committed"
    )
    by_epoch = {}
    coalesced = 0
    for response in responses:
        by_epoch.setdefault(response.epoch, 0)
        by_epoch[response.epoch] += 1
        if response.batch_size > 1:
            coalesced += 1
    print(
        f"epochs answered: "
        + ", ".join(
            f"epoch {epoch}: {count} requests"
            for epoch, count in sorted(by_epoch.items())
        )
    )
    print(
        f"{coalesced}/{len(responses)} requests shared a coalesced "
        f"batch\n"
    )
    print("== /stats ==")
    print(json.dumps(service.stats(), indent=2))
    service.close()


if __name__ == "__main__":
    main()
