"""Classification trees over TPC-DS: predicting preferred customers.

The Table 5 scenario: a depth-4 Gini classification tree learned over
the 10-relation TPC-DS snowflake, with every tree node computed as one
LMFAO aggregate batch (the node fragments are never materialized).

Run:  python examples/classification_tpcds.py
"""

import time

from repro import LMFAO, materialize_join
from repro.baselines import MaterializedEngine, brute_force_cart
from repro.datasets import tpcds
from repro.ml import CARTLearner


def main() -> None:
    dataset = tpcds(scale=0.5)
    print(f"dataset: {dataset.summary()}")

    continuous = [
        "ss_quantity", "ss_list_price", "ss_net_profit",
        "hd_dep_count", "cd_purchase_est",
    ]
    categorical = [
        "cd_gender", "cd_marital", "cd_education", "d_dow", "s_city",
    ]
    params = dict(max_depth=4, min_samples_split=500, n_buckets=10)

    engine = LMFAO(dataset.database, dataset.join_tree)
    start = time.perf_counter()
    learner = CARTLearner(
        engine, continuous, categorical, "preferred", "classification",
        **params,
    )
    tree = learner.fit()
    lmfao_seconds = time.perf_counter() - start

    baseline_engine = MaterializedEngine(dataset.database)
    flat = baseline_engine.materialize()
    start = time.perf_counter()
    brute = brute_force_cart(
        dataset.database, continuous, categorical, "preferred",
        "classification", flat=flat, thresholds=learner.thresholds, **params,
    )
    brute_seconds = time.perf_counter() - start

    print(f"\njoin materialization (what two-step solutions must pay): "
          f"{baseline_engine.materialize_seconds:.2f}s for "
          f"{flat.n_rows:,} rows")
    print(f"LMFAO tree:  {lmfao_seconds:6.2f}s  {tree.node_count()} nodes  "
          f"accuracy {tree.accuracy(flat):.4f}  "
          f"({learner.batches_run} batches, never materializes the join)")
    print(f"brute force: {brute_seconds:6.2f}s  {brute.node_count()} nodes  "
          f"accuracy {brute.accuracy(flat):.4f}")

    def show(node, indent="  "):
        if node.is_leaf:
            label = "preferred" if node.prediction else "regular"
            print(f"{indent}-> {label} (n={int(node.n_samples)})")
            return
        print(f"{indent}if {node.condition}:")
        show(node.left, indent + "  ")
        print(f"{indent}else:")
        show(node.right, indent + "  ")

    print("\nlearned classification tree:")
    show(tree.root)


if __name__ == "__main__":
    main()
